// Package realnfs serves the in-memory UFS filesystem over real UDP
// sockets using the ONC RPC / NFSv2 wire protocol from this repository.
// It demonstrates that the protocol stack is genuine: any client that
// speaks NFSv2 framing can create, write and read files against it.
//
// The filesystem still lives on the simulated disk; each incoming request
// runs to completion on the simulation clock (virtual device time costs
// no wall time), so the server is a functional NFS-protocol file server
// rather than a performance model.
package realnfs

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/disk"
	"repro/internal/hw"
	"repro/internal/nfsproto"
	"repro/internal/oncrpc"
	"repro/internal/sim"
	"repro/internal/ufs"
	"repro/internal/vfs"
)

// Server is a UDP NFSv2 server over the in-memory UFS.
type Server struct {
	mu   sync.Mutex
	sim  *sim.Sim
	fs   *ufs.FS
	conn *net.UDPConn
	done chan struct{}

	// Requests counts RPCs served.
	Requests uint64
}

// New formats a fresh filesystem and binds a UDP socket on addr
// (e.g. "127.0.0.1:0").
func New(addr string) (*Server, error) {
	s := sim.New(1)
	d := disk.New(s, hw.RZ26(), nil)
	fs, err := ufs.Format(s, d, 1, 1024, nil)
	if err != nil {
		return nil, err
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	return &Server{sim: s, fs: fs, conn: conn, done: make(chan struct{})}, nil
}

// Addr returns the bound UDP address.
func (rs *Server) Addr() *net.UDPAddr { return rs.conn.LocalAddr().(*net.UDPAddr) }

// RootFH returns the exported root handle.
func (rs *Server) RootFH() nfsproto.FH {
	return nfsproto.NewFH(rs.fs.FSID(), uint64(rs.fs.Root()), 0)
}

// Serve processes datagrams until Close. It blocks; run it in a goroutine.
func (rs *Server) Serve() error {
	buf := make([]byte, 65536)
	for {
		n, peer, err := rs.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-rs.done:
				return nil
			default:
				return err
			}
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		reply := rs.handle(pkt)
		if reply != nil {
			if _, err := rs.conn.WriteToUDP(reply, peer); err != nil {
				return err
			}
		}
	}
}

// Close shuts the server down.
func (rs *Server) Close() error {
	close(rs.done)
	return rs.conn.Close()
}

// run executes fn as a simulation process and drains the virtual clock.
func (rs *Server) run(fn func(p *sim.Proc)) {
	rs.sim.Spawn("rpc", fn)
	rs.sim.Run(0)
}

// handle decodes one RPC call and produces the reply bytes.
func (rs *Server) handle(pkt []byte) []byte {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.Requests++
	call, err := oncrpc.DecodeCall(pkt)
	if err != nil {
		return nil
	}
	if call.Prog != nfsproto.Program || call.Vers != nfsproto.Version {
		return oncrpc.ErrorReply(call.XID, oncrpc.ProgUnavail).Encode()
	}
	var results []byte
	ok := true
	rs.run(func(p *sim.Proc) {
		results, ok = rs.dispatch(p, nfsproto.Proc(call.Proc), call.Args)
	})
	if !ok {
		return oncrpc.ErrorReply(call.XID, oncrpc.GarbageArgs).Encode()
	}
	return oncrpc.AcceptedReply(call.XID, results).Encode()
}

func (rs *Server) attr(p *sim.Proc, ino vfs.Ino) (nfsproto.FAttr, error) {
	a, err := rs.fs.GetAttr(p, ino)
	if err != nil {
		return nfsproto.FAttr{}, err
	}
	ft := nfsproto.TypeReg
	if a.Type == vfs.TypeDir {
		ft = nfsproto.TypeDir
	}
	return nfsproto.FAttr{
		Type: ft, Mode: a.Mode, NLink: a.NLink, UID: a.UID, GID: a.GID,
		Size: a.Size, BlockSize: ufs.BlockSize, Blocks: a.Blocks,
		FSID: rs.fs.FSID(), FileID: uint32(ino),
	}, nil
}

func errStatus(err error) nfsproto.Status {
	switch err {
	case nil:
		return nfsproto.OK
	case vfs.ErrNoEnt:
		return nfsproto.ErrNoEnt
	case vfs.ErrExist:
		return nfsproto.ErrExist
	case vfs.ErrNotDir:
		return nfsproto.ErrNotDir
	case vfs.ErrIsDir:
		return nfsproto.ErrIsDir
	case vfs.ErrNotEmpty:
		return nfsproto.ErrNotEmpty
	case vfs.ErrNoSpace:
		return nfsproto.ErrNoSpc
	case vfs.ErrStale:
		return nfsproto.ErrStale
	default:
		return nfsproto.ErrIO
	}
}

// dispatch implements the NFSv2 procedures the demo supports.
func (rs *Server) dispatch(p *sim.Proc, proc nfsproto.Proc, args []byte) ([]byte, bool) {
	switch proc {
	case nfsproto.ProcNull:
		return []byte{}, true

	case nfsproto.ProcGetattr:
		a, err := nfsproto.DecodeFHArgs(args)
		if err != nil {
			return nil, false
		}
		res := &nfsproto.AttrStat{}
		if fa, gerr := rs.attr(p, vfs.Ino(a.File.Ino())); gerr != nil {
			res.Status = errStatus(gerr)
		} else {
			res.Attr = fa
		}
		return res.Encode(), true

	case nfsproto.ProcLookup:
		a, err := nfsproto.DecodeDirOpArgs(args)
		if err != nil {
			return nil, false
		}
		res := &nfsproto.DirOpRes{}
		ino, lerr := rs.fs.Lookup(p, vfs.Ino(a.Dir.Ino()), a.Name)
		if lerr != nil {
			res.Status = errStatus(lerr)
		} else if fa, gerr := rs.attr(p, ino); gerr != nil {
			res.Status = errStatus(gerr)
		} else {
			res.File = nfsproto.NewFH(rs.fs.FSID(), uint64(ino), fa.FileID)
			res.Attr = fa
		}
		return res.Encode(), true

	case nfsproto.ProcCreate, nfsproto.ProcMkdir:
		a, err := nfsproto.DecodeCreateArgs(args)
		if err != nil {
			return nil, false
		}
		mode := a.Attr.Mode
		if mode == nfsproto.NoValue {
			mode = 0644
		}
		var ino vfs.Ino
		var cerr error
		if proc == nfsproto.ProcMkdir {
			ino, cerr = rs.fs.Mkdir(p, vfs.Ino(a.Where.Dir.Ino()), a.Where.Name, mode)
		} else {
			ino, cerr = rs.fs.Create(p, vfs.Ino(a.Where.Dir.Ino()), a.Where.Name, mode)
		}
		res := &nfsproto.DirOpRes{}
		if cerr != nil {
			res.Status = errStatus(cerr)
		} else if fa, gerr := rs.attr(p, ino); gerr != nil {
			res.Status = errStatus(gerr)
		} else {
			res.File = nfsproto.NewFH(rs.fs.FSID(), uint64(ino), fa.FileID)
			res.Attr = fa
		}
		return res.Encode(), true

	case nfsproto.ProcWrite:
		a, err := nfsproto.DecodeWriteArgs(args)
		if err != nil {
			return nil, false
		}
		ino := vfs.Ino(a.File.Ino())
		res := &nfsproto.AttrStat{}
		if werr := rs.fs.Write(p, ino, a.Offset, a.Data, vfs.IOSync); werr != nil {
			res.Status = errStatus(werr)
		} else if fa, gerr := rs.attr(p, ino); gerr != nil {
			res.Status = errStatus(gerr)
		} else {
			res.Attr = fa
		}
		return res.Encode(), true

	case nfsproto.ProcRead:
		a, err := nfsproto.DecodeReadArgs(args)
		if err != nil {
			return nil, false
		}
		count := a.Count
		if count > nfsproto.MaxData {
			count = nfsproto.MaxData
		}
		buf := make([]byte, count)
		ino := vfs.Ino(a.File.Ino())
		res := &nfsproto.ReadRes{}
		n, rerr := rs.fs.Read(p, ino, a.Offset, buf)
		if rerr != nil {
			res.Status = errStatus(rerr)
		} else if fa, gerr := rs.attr(p, ino); gerr != nil {
			res.Status = errStatus(gerr)
		} else {
			res.Attr = fa
			res.Data = buf[:n]
		}
		return res.Encode(), true

	case nfsproto.ProcRemove, nfsproto.ProcRmdir:
		a, err := nfsproto.DecodeDirOpArgs(args)
		if err != nil {
			return nil, false
		}
		var rerr error
		if proc == nfsproto.ProcRmdir {
			rerr = rs.fs.Rmdir(p, vfs.Ino(a.Dir.Ino()), a.Name)
		} else {
			rerr = rs.fs.Remove(p, vfs.Ino(a.Dir.Ino()), a.Name)
		}
		return (&nfsproto.StatusRes{Status: errStatus(rerr)}).Encode(), true

	case nfsproto.ProcReaddir:
		a, err := nfsproto.DecodeReaddirArgs(args)
		if err != nil {
			return nil, false
		}
		res := &nfsproto.ReaddirRes{}
		ents, eof, rerr := rs.fs.Readdir(p, vfs.Ino(a.Dir.Ino()), a.Cookie, int(a.Count))
		if rerr != nil {
			res.Status = errStatus(rerr)
		} else {
			res.EOF = eof
			for _, e := range ents {
				res.Entries = append(res.Entries, nfsproto.DirEntry{
					FileID: uint32(e.Ino), Name: e.Name, Cookie: e.Cookie,
				})
			}
		}
		return res.Encode(), true

	case nfsproto.ProcStatfs:
		if _, err := nfsproto.DecodeFHArgs(args); err != nil {
			return nil, false
		}
		bs, blocks, free := rs.fs.Statfs(p)
		return (&nfsproto.StatfsRes{
			Status: nfsproto.OK, TSize: 8192, BSize: uint32(bs),
			Blocks: uint32(blocks), BFree: uint32(free), BAvail: uint32(free),
		}).Encode(), true

	default:
		return nil, false
	}
}

// Client is a minimal real-UDP NFSv2 client for the demo and tests.
type Client struct {
	conn *net.UDPConn
	xid  uint32
}

// Dial connects a client to a realnfs server address.
func Dial(addr *net.UDPAddr) (*Client, error) {
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// Call performs one RPC over the socket.
func (c *Client) Call(proc nfsproto.Proc, args []byte) ([]byte, error) {
	c.xid++
	call := &oncrpc.CallMsg{
		XID: c.xid, Prog: nfsproto.Program, Vers: nfsproto.Version,
		Proc: uint32(proc), Cred: oncrpc.NullAuth(), Verf: oncrpc.NullAuth(),
		Args: args,
	}
	if _, err := c.conn.Write(call.Encode()); err != nil {
		return nil, err
	}
	buf := make([]byte, 65536)
	n, err := c.conn.Read(buf)
	if err != nil {
		return nil, err
	}
	reply, err := oncrpc.DecodeReply(buf[:n])
	if err != nil {
		return nil, err
	}
	if reply.XID != c.xid {
		return nil, fmt.Errorf("realnfs: xid mismatch: %d != %d", reply.XID, c.xid)
	}
	if reply.AccStat != oncrpc.Success {
		return nil, fmt.Errorf("realnfs: rpc status %d", reply.AccStat)
	}
	return reply.Results, nil
}
