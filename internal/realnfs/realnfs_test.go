package realnfs

import (
	"bytes"
	"testing"

	"repro/internal/nfsproto"
)

// pair starts a server on loopback and dials a client.
func pair(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := New("127.0.0.1:0")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestNullRPC(t *testing.T) {
	_, cli := pair(t)
	res, err := cli.Call(nfsproto.ProcNull, nil)
	if err != nil {
		t.Fatalf("NULL: %v", err)
	}
	if len(res) != 0 {
		t.Fatalf("NULL results = %v", res)
	}
}

func TestCreateWriteReadOverUDP(t *testing.T) {
	srv, cli := pair(t)
	root := srv.RootFH()
	res, err := cli.Call(nfsproto.ProcCreate, (&nfsproto.CreateArgs{
		Where: nfsproto.DirOpArgs{Dir: root, Name: "wire.bin"},
		Attr:  nfsproto.DefaultSAttr(0644),
	}).Encode())
	if err != nil {
		t.Fatalf("CREATE: %v", err)
	}
	dres, err := nfsproto.DecodeDirOpRes(res)
	if err != nil || dres.Status != nfsproto.OK {
		t.Fatalf("CREATE: %v %v", err, dres)
	}
	payload := bytes.Repeat([]byte{0xA5}, 8192)
	res, err = cli.Call(nfsproto.ProcWrite, (&nfsproto.WriteArgs{
		File: dres.File, Offset: 0, Data: payload,
	}).Encode())
	if err != nil {
		t.Fatalf("WRITE: %v", err)
	}
	as, err := nfsproto.DecodeAttrStat(res)
	if err != nil || as.Status != nfsproto.OK || as.Attr.Size != 8192 {
		t.Fatalf("WRITE: %v %v", err, as)
	}
	res, err = cli.Call(nfsproto.ProcRead, (&nfsproto.ReadArgs{
		File: dres.File, Offset: 0, Count: 8192,
	}).Encode())
	if err != nil {
		t.Fatalf("READ: %v", err)
	}
	rr, err := nfsproto.DecodeReadRes(res)
	if err != nil || rr.Status != nfsproto.OK {
		t.Fatalf("READ: %v %v", err, rr)
	}
	if !bytes.Equal(rr.Data, payload) {
		t.Fatal("payload mismatch over real UDP")
	}
}

func TestLookupAndGetattr(t *testing.T) {
	srv, cli := pair(t)
	root := srv.RootFH()
	cli.Call(nfsproto.ProcCreate, (&nfsproto.CreateArgs{
		Where: nfsproto.DirOpArgs{Dir: root, Name: "x"},
		Attr:  nfsproto.DefaultSAttr(0644),
	}).Encode())
	res, err := cli.Call(nfsproto.ProcLookup, (&nfsproto.DirOpArgs{Dir: root, Name: "x"}).Encode())
	if err != nil {
		t.Fatalf("LOOKUP: %v", err)
	}
	dres, err := nfsproto.DecodeDirOpRes(res)
	if err != nil || dres.Status != nfsproto.OK {
		t.Fatalf("LOOKUP: %v %v", err, dres)
	}
	res, err = cli.Call(nfsproto.ProcGetattr, (&nfsproto.FHArgs{File: dres.File}).Encode())
	if err != nil {
		t.Fatalf("GETATTR: %v", err)
	}
	as, err := nfsproto.DecodeAttrStat(res)
	if err != nil || as.Status != nfsproto.OK || as.Attr.Type != nfsproto.TypeReg {
		t.Fatalf("GETATTR: %v %v", err, as)
	}
}

func TestLookupMissingReturnsNoEnt(t *testing.T) {
	srv, cli := pair(t)
	res, err := cli.Call(nfsproto.ProcLookup, (&nfsproto.DirOpArgs{Dir: srv.RootFH(), Name: "ghost"}).Encode())
	if err != nil {
		t.Fatalf("LOOKUP: %v", err)
	}
	dres, err := nfsproto.DecodeDirOpRes(res)
	if err != nil || dres.Status != nfsproto.ErrNoEnt {
		t.Fatalf("LOOKUP ghost: %v %v", err, dres)
	}
}

func TestRemoveAndReaddir(t *testing.T) {
	srv, cli := pair(t)
	root := srv.RootFH()
	for _, n := range []string{"a", "b"} {
		cli.Call(nfsproto.ProcCreate, (&nfsproto.CreateArgs{
			Where: nfsproto.DirOpArgs{Dir: root, Name: n},
			Attr:  nfsproto.DefaultSAttr(0644),
		}).Encode())
	}
	res, err := cli.Call(nfsproto.ProcRemove, (&nfsproto.DirOpArgs{Dir: root, Name: "a"}).Encode())
	if err != nil {
		t.Fatalf("REMOVE: %v", err)
	}
	sres, _ := nfsproto.DecodeStatusRes(res)
	if sres.Status != nfsproto.OK {
		t.Fatalf("REMOVE: %v", sres.Status)
	}
	res, err = cli.Call(nfsproto.ProcReaddir, (&nfsproto.ReaddirArgs{Dir: root, Count: 1024}).Encode())
	if err != nil {
		t.Fatalf("READDIR: %v", err)
	}
	lr, err := nfsproto.DecodeReaddirRes(res)
	if err != nil || lr.Status != nfsproto.OK {
		t.Fatalf("READDIR: %v %v", err, lr)
	}
	if len(lr.Entries) != 1 || lr.Entries[0].Name != "b" {
		t.Fatalf("entries = %+v", lr.Entries)
	}
}

func TestStatfsOverUDP(t *testing.T) {
	srv, cli := pair(t)
	res, err := cli.Call(nfsproto.ProcStatfs, (&nfsproto.FHArgs{File: srv.RootFH()}).Encode())
	if err != nil {
		t.Fatalf("STATFS: %v", err)
	}
	sr, err := nfsproto.DecodeStatfsRes(res)
	if err != nil || sr.Status != nfsproto.OK || sr.BSize != 8192 {
		t.Fatalf("STATFS: %v %+v", err, sr)
	}
}
