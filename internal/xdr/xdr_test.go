package xdr

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestUint32RoundTrip(t *testing.T) {
	for _, v := range []uint32{0, 1, 0x7fffffff, 0x80000000, 0xffffffff} {
		e := NewEncoder(nil)
		e.Uint32(v)
		if e.Len() != 4 {
			t.Fatalf("Uint32 encoded to %d bytes", e.Len())
		}
		d := NewDecoder(e.Bytes())
		got, err := d.Uint32()
		if err != nil || got != v {
			t.Fatalf("round trip %d -> %d, err %v", v, got, err)
		}
	}
}

func TestUint32BigEndian(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint32(0x01020304)
	want := []byte{1, 2, 3, 4}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("encoding = %v, want %v", e.Bytes(), want)
	}
}

func TestInt32Negative(t *testing.T) {
	e := NewEncoder(nil)
	e.Int32(-1)
	d := NewDecoder(e.Bytes())
	got, err := d.Int32()
	if err != nil || got != -1 {
		t.Fatalf("round trip -1 -> %d, err %v", got, err)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		e := NewEncoder(nil)
		e.Uint64(v)
		if e.Len() != 8 {
			t.Fatalf("Uint64 encoded to %d bytes", e.Len())
		}
		d := NewDecoder(e.Bytes())
		got, err := d.Uint64()
		if err != nil || got != v {
			t.Fatalf("round trip %d -> %d, err %v", v, got, err)
		}
	}
}

func TestBoolStrict(t *testing.T) {
	e := NewEncoder(nil)
	e.Bool(true)
	e.Bool(false)
	e.Uint32(2) // invalid boolean on the wire
	d := NewDecoder(e.Bytes())
	if v, err := d.Bool(); err != nil || !v {
		t.Fatalf("Bool true: %v %v", v, err)
	}
	if v, err := d.Bool(); err != nil || v {
		t.Fatalf("Bool false: %v %v", v, err)
	}
	if _, err := d.Bool(); !errors.Is(err, ErrBadBool) {
		t.Fatalf("Bool(2) err = %v, want ErrBadBool", err)
	}
}

func TestOpaquePadding(t *testing.T) {
	for n := 0; n <= 9; n++ {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i + 1)
		}
		e := NewEncoder(nil)
		e.Opaque(data)
		wantLen := 4 + n + (4-n%4)%4
		if e.Len() != wantLen {
			t.Fatalf("Opaque(%d bytes) encoded to %d, want %d", n, e.Len(), wantLen)
		}
		d := NewDecoder(e.Bytes())
		got, err := d.Opaque()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip %v -> %v", data, got)
		}
		if d.Remaining() != 0 {
			t.Fatalf("leftover %d bytes after n=%d", d.Remaining(), n)
		}
	}
}

func TestFixedOpaqueRoundTrip(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5}
	e := NewEncoder(nil)
	e.FixedOpaque(data)
	if e.Len() != 8 { // 5 bytes + 3 padding
		t.Fatalf("len = %d, want 8", e.Len())
	}
	d := NewDecoder(e.Bytes())
	got, err := d.FixedOpaque(5)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip = %v, err %v", got, err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "hello", "exact4ch", "ünïcødé"} {
		e := NewEncoder(nil)
		e.String(s)
		d := NewDecoder(e.Bytes())
		got, err := d.String()
		if err != nil || got != s {
			t.Fatalf("round trip %q -> %q, err %v", s, got, err)
		}
	}
}

func TestShortBufferErrors(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	if _, err := d.Uint32(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("Uint32 on short buffer: %v", err)
	}
	d = NewDecoder([]byte{0, 0, 0, 8, 1, 2}) // claims 8 bytes, has 2
	if _, err := d.Opaque(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("Opaque on short buffer: %v", err)
	}
}

func TestImplausibleLengthRejected(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint32(0xFFFFFFF0)
	d := NewDecoder(e.Bytes())
	if _, err := d.Opaque(); !errors.Is(err, ErrBadLength) {
		t.Fatalf("huge opaque length: %v, want ErrBadLength", err)
	}
	d2 := NewDecoder(nil)
	if _, err := d2.FixedOpaque(-1); !errors.Is(err, ErrBadLength) {
		t.Fatalf("negative fixed length: %v, want ErrBadLength", err)
	}
}

func TestSequenceRoundTrip(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint32(7)
	e.String("file.txt")
	e.Bool(true)
	e.Uint64(1 << 33)
	e.Opaque([]byte{9, 9, 9})
	d := NewDecoder(e.Bytes())
	if v, _ := d.Uint32(); v != 7 {
		t.Fatal("field 1")
	}
	if s, _ := d.String(); s != "file.txt" {
		t.Fatal("field 2")
	}
	if b, _ := d.Bool(); !b {
		t.Fatal("field 3")
	}
	if v, _ := d.Uint64(); v != 1<<33 {
		t.Fatal("field 4")
	}
	if o, _ := d.Opaque(); !bytes.Equal(o, []byte{9, 9, 9}) {
		t.Fatal("field 5")
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}

func TestQuickOpaqueRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		e := NewEncoder(nil)
		e.Opaque(data)
		d := NewDecoder(e.Bytes())
		got, err := d.Opaque()
		return err == nil && bytes.Equal(got, data) && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMixedRoundTrip(t *testing.T) {
	f := func(a uint32, b uint64, s string, o []byte, flag bool) bool {
		if len(o) > 4096 {
			o = o[:4096]
		}
		e := NewEncoder(nil)
		e.Uint32(a)
		e.Uint64(b)
		e.String(s)
		e.Opaque(o)
		e.Bool(flag)
		d := NewDecoder(e.Bytes())
		ga, e1 := d.Uint32()
		gb, e2 := d.Uint64()
		gs, e3 := d.String()
		og, e4 := d.Opaque()
		gf, e5 := d.Bool()
		for _, err := range []error{e1, e2, e3, e4, e5} {
			if err != nil {
				return false
			}
		}
		return ga == a && gb == b && gs == s && bytes.Equal(og, o) && gf == flag && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLengthAlwaysMultipleOf4(t *testing.T) {
	f := func(o []byte, s string) bool {
		if len(o) > 4096 {
			o = o[:4096]
		}
		e := NewEncoder(nil)
		e.Opaque(o)
		e.String(s)
		return e.Len()%4 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
