// Package xdr implements External Data Representation (XDR, RFC 1014)
// encoding and decoding as used by ONC RPC and NFS. All quantities are
// big-endian and padded to 4-byte boundaries.
package xdr

import (
	"errors"
	"fmt"
)

// Errors returned by the decoder.
var (
	ErrShortBuffer = errors.New("xdr: short buffer")
	ErrBadLength   = errors.New("xdr: implausible length")
	ErrBadBool     = errors.New("xdr: boolean not 0 or 1")
)

// maxLen bounds variable-length opaque/string sizes to protect decoders fed
// garbage: nothing in NFSv2 exceeds 8K data plus small headers.
const maxLen = 1 << 20

// Encoder appends XDR-encoded values to a byte slice.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder writing into buf (may be nil).
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf} }

// Bytes returns the encoded bytes.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Uint32 encodes a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Int32 encodes a 32-bit signed integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 encodes a 64-bit unsigned integer (XDR "unsigned hyper").
func (e *Encoder) Uint64(v uint64) {
	e.Uint32(uint32(v >> 32))
	e.Uint32(uint32(v))
}

// Bool encodes a boolean as 0 or 1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint32(1)
	} else {
		e.Uint32(0)
	}
}

// FixedOpaque encodes fixed-length opaque data (no length prefix), padded
// to a multiple of 4 bytes.
func (e *Encoder) FixedOpaque(b []byte) {
	e.buf = append(e.buf, b...)
	for pad := (4 - len(b)%4) % 4; pad > 0; pad-- {
		e.buf = append(e.buf, 0)
	}
}

// Opaque encodes variable-length opaque data: length then padded bytes.
func (e *Encoder) Opaque(b []byte) {
	e.Uint32(uint32(len(b)))
	e.FixedOpaque(b)
}

// String encodes an XDR string.
func (e *Encoder) String(s string) {
	e.Uint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
	for pad := (4 - len(s)%4) % 4; pad > 0; pad-- {
		e.buf = append(e.buf, 0)
	}
}

// Raw appends pre-encoded bytes verbatim (no length prefix, no padding).
// It is the splice point for embedding an already-XDR-encoded body, such
// as RPC procedure arguments, without a second encoding pass.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// OpaqueSize reports the encoded size of variable-length opaque data of n
// bytes: length word plus payload padded to a 4-byte boundary.
func OpaqueSize(n int) int { return 4 + (n+3)&^3 }

// Decoder consumes XDR-encoded values from a byte slice.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder reading from buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining reports how many bytes are left.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset reports the current read position.
func (d *Decoder) Offset() int { return d.off }

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	if d.Remaining() < 4 {
		return 0, ErrShortBuffer
	}
	b := d.buf[d.off:]
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	d.off += 4
	return v, nil
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes a 64-bit unsigned integer.
func (d *Decoder) Uint64() (uint64, error) {
	hi, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	lo, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	return uint64(hi)<<32 | uint64(lo), nil
}

// Bool decodes a boolean, insisting on 0 or 1.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: %d", ErrBadBool, v)
	}
}

// FixedOpaque decodes n bytes of fixed-length opaque data plus padding.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	if n < 0 || n > maxLen {
		return nil, ErrBadLength
	}
	padded := n + (4-n%4)%4
	if d.Remaining() < padded {
		return nil, ErrShortBuffer
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+n])
	d.off += padded
	return out, nil
}

// Opaque decodes variable-length opaque data.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, n)
	}
	return d.FixedOpaque(int(n))
}

// FixedOpaqueRef is FixedOpaque without the defensive copy: the returned
// slice aliases the decoder's buffer. Use it only when the buffer is
// immutable for the life of the result (wire payloads are).
func (d *Decoder) FixedOpaqueRef(n int) ([]byte, error) {
	if n < 0 || n > maxLen {
		return nil, ErrBadLength
	}
	padded := n + (4-n%4)%4
	if d.Remaining() < padded {
		return nil, ErrShortBuffer
	}
	out := d.buf[d.off : d.off+n : d.off+n]
	d.off += padded
	return out, nil
}

// OpaqueRef decodes variable-length opaque data without copying; the
// result aliases the decoder's buffer.
func (d *Decoder) OpaqueRef() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, n)
	}
	return d.FixedOpaqueRef(int(n))
}

// String decodes an XDR string.
func (d *Decoder) String() (string, error) {
	b, err := d.Opaque()
	return string(b), err
}
