package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// fakeFS records the call sequence the engine makes and simulates device
// latency, so tests can assert the stable-storage ordering contract
// without a full UFS underneath.
type fakeFS struct {
	s         *sim.Sim
	log       []string
	writeLat  sim.Duration
	syncLat   sim.Duration
	fsyncLat  sim.Duration
	failWrite bool
	failFsync bool
	fsyncs    int
	syncs     int
}

func (f *fakeFS) logf(format string, args ...any) {
	f.log = append(f.log, fmt.Sprintf(format, args...))
}

func (f *fakeFS) Root() vfs.Ino { return 1 }
func (f *fakeFS) FSID() uint32  { return 1 }
func (f *fakeFS) Lookup(*sim.Proc, vfs.Ino, string) (vfs.Ino, error) {
	return 0, vfs.ErrNoEnt
}
func (f *fakeFS) Create(*sim.Proc, vfs.Ino, string, uint32) (vfs.Ino, error) {
	return 0, vfs.ErrNoSpace
}
func (f *fakeFS) Mkdir(*sim.Proc, vfs.Ino, string, uint32) (vfs.Ino, error) {
	return 0, vfs.ErrNoSpace
}
func (f *fakeFS) Remove(*sim.Proc, vfs.Ino, string) error { return vfs.ErrNoEnt }
func (f *fakeFS) Rmdir(*sim.Proc, vfs.Ino, string) error  { return vfs.ErrNoEnt }
func (f *fakeFS) Rename(*sim.Proc, vfs.Ino, string, vfs.Ino, string) error {
	return vfs.ErrNoEnt
}
func (f *fakeFS) Readdir(*sim.Proc, vfs.Ino, uint32, int) ([]vfs.DirEntry, bool, error) {
	return nil, true, nil
}
func (f *fakeFS) GetAttr(*sim.Proc, vfs.Ino) (vfs.Attr, error) { return vfs.Attr{}, nil }
func (f *fakeFS) SetAttrs(*sim.Proc, vfs.Ino, vfs.SetAttr) (vfs.Attr, error) {
	return vfs.Attr{}, nil
}
func (f *fakeFS) Read(*sim.Proc, vfs.Ino, uint32, []byte) (int, error) { return 0, nil }

func (f *fakeFS) Write(p *sim.Proc, ino vfs.Ino, off uint32, data []byte, flags vfs.IOFlags) error {
	if f.failWrite {
		return vfs.ErrNoSpace
	}
	f.logf("write ino=%d off=%d flags=%d", ino, off, flags)
	if f.writeLat > 0 {
		p.Sleep(f.writeLat)
	}
	return nil
}

func (f *fakeFS) SyncData(p *sim.Proc, ino vfs.Ino, from, to uint32) error {
	f.syncs++
	f.logf("syncdata ino=%d %d..%d", ino, from, to)
	if f.syncLat > 0 {
		p.Sleep(f.syncLat)
	}
	return nil
}

func (f *fakeFS) Fsync(p *sim.Proc, ino vfs.Ino, flags vfs.FsyncFlags) error {
	if f.failFsync {
		return vfs.ErrNoSpace
	}
	f.fsyncs++
	f.logf("fsync ino=%d flags=%d", ino, flags)
	if f.fsyncLat > 0 {
		p.Sleep(f.fsyncLat)
	}
	return nil
}

func (f *fakeFS) Statfs(*sim.Proc) (int, int64, int64) { return 8192, 100, 100 }

var _ vfs.FileSystem = (*fakeFS)(nil)

type replyRec struct {
	id   int
	ok   bool
	when sim.Time
}

// spawnWrite issues one gathered write from a dedicated nfsd process.
func spawnWrite(s *sim.Sim, e *Engine, nfsd int, id int, off uint32, replies *[]replyRec, after sim.Duration) {
	s.SpawnAfter(after, fmt.Sprintf("nfsd%d", nfsd), func(p *sim.Proc) {
		d := &WriteDesc{
			Ino: 7, Offset: off, Length: 8192, Arrived: p.Now(),
			Send: func(p *sim.Proc, ok bool) {
				*replies = append(*replies, replyRec{id: id, ok: ok, when: p.Now()})
			},
		}
		e.HandleWrite(p, nfsd, d, make([]byte, 8192))
	})
}

func TestSingleWriteCommitsAfterProcrastination(t *testing.T) {
	s := sim.New(1)
	fs := &fakeFS{s: s}
	cfg := DefaultConfig(false, 8*sim.Millisecond)
	e := NewEngine(s, fs, 4, cfg, nil)
	var replies []replyRec
	spawnWrite(s, e, 0, 1, 0, &replies, 0)
	s.Run(0)
	if len(replies) != 1 || !replies[0].ok {
		t.Fatalf("replies = %+v", replies)
	}
	// One procrastination (8ms) must precede the commit.
	if replies[0].when < sim.Time(8*sim.Millisecond) {
		t.Fatalf("reply at %v, before the procrastination interval", replies[0].when)
	}
	if e.Stats().Procrastinations != 1 {
		t.Fatalf("procrastinations = %d", e.Stats().Procrastinations)
	}
	if fs.fsyncs != 1 || fs.syncs != 1 {
		t.Fatalf("fsyncs=%d syncs=%d", fs.fsyncs, fs.syncs)
	}
}

func TestConcurrentWritesGatherIntoOneCommit(t *testing.T) {
	s := sim.New(1)
	fs := &fakeFS{s: s, writeLat: sim.Millisecond}
	cfg := DefaultConfig(false, 8*sim.Millisecond)
	e := NewEngine(s, fs, 8, cfg, nil)
	var replies []replyRec
	for i := 0; i < 5; i++ {
		spawnWrite(s, e, i, i, uint32(i*8192), &replies, sim.Duration(i)*100*sim.Microsecond)
	}
	s.Run(0)
	if len(replies) != 5 {
		t.Fatalf("%d replies, want 5", len(replies))
	}
	st := e.Stats()
	if st.Gathers != 1 {
		t.Fatalf("gathers = %d, want 1 (one metadata commit for all 5)", st.Gathers)
	}
	if st.GatheredWrites != 5 || st.MaxBatch != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if fs.fsyncs != 1 {
		t.Fatalf("fsyncs = %d, want 1", fs.fsyncs)
	}
	// All five replies at the same instant, FIFO order.
	for i, r := range replies {
		if r.id != i {
			t.Fatalf("reply order = %v, want FIFO", replies)
		}
		if r.when != replies[0].when {
			t.Fatalf("replies not batched: %+v", replies)
		}
	}
}

func TestNoReplyBeforeMetadataCommit(t *testing.T) {
	// The stable-storage contract: every Send must happen after the fsync
	// that covers it. The fake FS log interleaved with reply times proves
	// ordering.
	s := sim.New(1)
	fs := &fakeFS{s: s, fsyncLat: 10 * sim.Millisecond}
	cfg := DefaultConfig(false, sim.Millisecond)
	e := NewEngine(s, fs, 4, cfg, nil)
	var fsyncDone sim.Time
	var replyAt sim.Time
	s.Spawn("nfsd", func(p *sim.Proc) {
		d := &WriteDesc{
			Ino: 3, Offset: 0, Length: 8192,
			Send: func(p *sim.Proc, ok bool) { replyAt = p.Now() },
		}
		e.HandleWrite(p, 0, d, make([]byte, 8192))
		fsyncDone = p.Now()
	})
	s.Run(0)
	if replyAt < sim.Time(11*sim.Millisecond) {
		t.Fatalf("reply at %v, before fsync completion", replyAt)
	}
	_ = fsyncDone
}

func TestAcceleratedSkipsSyncData(t *testing.T) {
	s := sim.New(1)
	fs := &fakeFS{s: s}
	cfg := DefaultConfig(true, 8*sim.Millisecond)
	e := NewEngine(s, fs, 4, cfg, nil)
	var replies []replyRec
	spawnWrite(s, e, 0, 1, 0, &replies, 0)
	s.Run(0)
	if fs.syncs != 0 {
		t.Fatalf("accelerated path called SyncData %d times", fs.syncs)
	}
	if fs.fsyncs != 1 {
		t.Fatalf("fsyncs = %d", fs.fsyncs)
	}
	if len(fs.log) == 0 || fs.log[0] != fmt.Sprintf("write ino=7 off=0 flags=%d", vfs.IOSync|vfs.IODataOnly) {
		t.Fatalf("log[0] = %v, want IOSync|IODataOnly write", fs.log)
	}
}

func TestPlainDiskUsesDelayData(t *testing.T) {
	s := sim.New(1)
	fs := &fakeFS{s: s}
	e := NewEngine(s, fs, 4, DefaultConfig(false, sim.Millisecond), nil)
	var replies []replyRec
	spawnWrite(s, e, 0, 1, 0, &replies, 0)
	s.Run(0)
	want := fmt.Sprintf("write ino=7 off=0 flags=%d", vfs.IODelayData)
	if len(fs.log) == 0 || fs.log[0] != want {
		t.Fatalf("log[0] = %v, want %q", fs.log, want)
	}
}

func TestHunterHitDefersReply(t *testing.T) {
	s := sim.New(1)
	fs := &fakeFS{s: s}
	cfg := DefaultConfig(false, 8*sim.Millisecond)
	hunts := 0
	// First probe says "yes, another write is queued"; later probes no.
	hunter := func(ino vfs.Ino) bool {
		hunts++
		return hunts == 1
	}
	e := NewEngine(s, fs, 4, cfg, hunter)
	var replies []replyRec
	spawnWrite(s, e, 0, 1, 0, &replies, 0)
	// The promised second write arrives 2ms later on another nfsd.
	spawnWrite(s, e, 1, 2, 8192, &replies, 2*sim.Millisecond)
	s.Run(0)
	if len(replies) != 2 {
		t.Fatalf("replies = %+v", replies)
	}
	st := e.Stats()
	if st.HunterHits != 1 {
		t.Fatalf("HunterHits = %d", st.HunterHits)
	}
	if st.Gathers != 1 || st.GatheredWrites != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLIFOAblationReversesReplies(t *testing.T) {
	s := sim.New(1)
	fs := &fakeFS{s: s, writeLat: sim.Millisecond}
	cfg := DefaultConfig(false, 8*sim.Millisecond)
	cfg.LIFOReplies = true
	e := NewEngine(s, fs, 8, cfg, nil)
	var replies []replyRec
	for i := 0; i < 3; i++ {
		spawnWrite(s, e, i, i, uint32(i*8192), &replies, sim.Duration(i)*100*sim.Microsecond)
	}
	s.Run(0)
	if len(replies) != 3 {
		t.Fatalf("%d replies", len(replies))
	}
	for i, r := range replies {
		if r.id != 2-i {
			t.Fatalf("reply order = %+v, want LIFO", replies)
		}
	}
}

func TestWriteErrorRepliesImmediately(t *testing.T) {
	s := sim.New(1)
	fs := &fakeFS{s: s, failWrite: true}
	e := NewEngine(s, fs, 4, DefaultConfig(false, sim.Millisecond), nil)
	var replies []replyRec
	var err error
	s.Spawn("nfsd", func(p *sim.Proc) {
		d := &WriteDesc{Ino: 7, Send: func(p *sim.Proc, ok bool) {
			replies = append(replies, replyRec{ok: ok})
		}}
		err = e.HandleWrite(p, 0, d, nil)
	})
	s.Run(0)
	if err == nil {
		t.Fatal("no error from failing write")
	}
	if len(replies) != 1 || replies[0].ok {
		t.Fatalf("replies = %+v, want one error reply", replies)
	}
	if e.PendingReplies() != 0 {
		t.Fatal("descriptor leaked on write error")
	}
}

func TestFsyncErrorFailsWholeBatch(t *testing.T) {
	s := sim.New(1)
	fs := &fakeFS{s: s, writeLat: sim.Millisecond, failFsync: true}
	e := NewEngine(s, fs, 8, DefaultConfig(false, 8*sim.Millisecond), nil)
	var replies []replyRec
	for i := 0; i < 3; i++ {
		spawnWrite(s, e, i, i, uint32(i*8192), &replies, sim.Duration(i)*100*sim.Microsecond)
	}
	s.Run(0)
	if len(replies) != 3 {
		t.Fatalf("%d replies, want 3", len(replies))
	}
	for _, r := range replies {
		if r.ok {
			t.Fatalf("reply ok despite fsync failure: %+v", replies)
		}
	}
	if e.PendingReplies() != 0 {
		t.Fatal("descriptors leaked after fsync failure")
	}
}

func TestEveryWriteRepliedExactlyOnce(t *testing.T) {
	// Many writes across overlapping bursts: exactly one reply each.
	s := sim.New(42)
	fs := &fakeFS{s: s, writeLat: 500 * sim.Microsecond, fsyncLat: 3 * sim.Millisecond}
	e := NewEngine(s, fs, 8, DefaultConfig(false, 2*sim.Millisecond), nil)
	const n = 40
	var replies []replyRec
	for i := 0; i < n; i++ {
		spawnWrite(s, e, i%8, i, uint32(i*8192), &replies, sim.Duration(i)*700*sim.Microsecond)
	}
	s.Run(0)
	if len(replies) != n {
		t.Fatalf("%d replies, want %d", len(replies), n)
	}
	seen := map[int]bool{}
	for _, r := range replies {
		if seen[r.id] {
			t.Fatalf("duplicate reply for %d", r.id)
		}
		seen[r.id] = true
	}
	if e.PendingReplies() != 0 {
		t.Fatal("pending replies left over")
	}
	st := e.Stats()
	if st.Gathers == 0 || st.GatheredWrites != n {
		t.Fatalf("stats = %+v", st)
	}
	// Gathering must have batched: far fewer commits than writes.
	if st.Gathers >= n/2 {
		t.Fatalf("no batching: %d gathers for %d writes", st.Gathers, n)
	}
}

func TestWritesDuringCommitAreCovered(t *testing.T) {
	// A write that arrives while the metadata writer is mid-flush must not
	// be orphaned: the writer loops and commits it too.
	s := sim.New(1)
	fs := &fakeFS{s: s, fsyncLat: 10 * sim.Millisecond, syncLat: 5 * sim.Millisecond}
	e := NewEngine(s, fs, 8, DefaultConfig(false, sim.Millisecond), nil)
	var replies []replyRec
	spawnWrite(s, e, 0, 1, 0, &replies, 0)
	// Arrives during the first commit's SyncData/Fsync window (after the
	// 1ms procrastination, inside 1ms..16ms).
	spawnWrite(s, e, 1, 2, 8192, &replies, 4*sim.Millisecond)
	s.Run(0)
	if len(replies) != 2 {
		t.Fatalf("replies = %+v", replies)
	}
	if e.Stats().Gathers != 2 {
		t.Fatalf("gathers = %d, want 2 (second batch for late write)", e.Stats().Gathers)
	}
	if e.PendingReplies() != 0 {
		t.Fatal("late write orphaned")
	}
}

func TestAdoptOrphanRescuesQueue(t *testing.T) {
	// An nfsd leaves its reply pending because the hunter promised another
	// write — but that write turns out to be a duplicate and is dropped.
	// AdoptOrphan must commit the stranded descriptor.
	s := sim.New(1)
	fs := &fakeFS{s: s}
	cfg := DefaultConfig(false, 8*sim.Millisecond)
	hunter := func(vfs.Ino) bool { return true } // always promises more
	e := NewEngine(s, fs, 4, cfg, hunter)
	var replies []replyRec
	spawnWrite(s, e, 0, 1, 0, &replies, 0)
	s.Run(0)
	if len(replies) != 0 {
		t.Fatalf("reply sent with no metadata writer: %+v", replies)
	}
	if e.PendingReplies() != 1 {
		t.Fatalf("pending = %d, want 1 orphan", e.PendingReplies())
	}
	// The nfsd that dropped the duplicate adopts the orphan.
	s.Spawn("adopter", func(p *sim.Proc) {
		if !e.AdoptOrphan(p, 1, 7) {
			t.Error("AdoptOrphan found nothing")
		}
	})
	s.Run(0)
	if len(replies) != 1 || !replies[0].ok {
		t.Fatalf("replies after adoption = %+v", replies)
	}
	if e.Stats().Adoptions != 1 {
		t.Fatalf("adoptions = %d", e.Stats().Adoptions)
	}
}

func TestAdoptOrphanNoopWhenActive(t *testing.T) {
	s := sim.New(1)
	fs := &fakeFS{s: s}
	e := NewEngine(s, fs, 4, DefaultConfig(false, 50*sim.Millisecond), nil)
	var replies []replyRec
	spawnWrite(s, e, 0, 1, 0, &replies, 0)
	adopted := true
	// While nfsd 0 procrastinates, adoption must refuse (an active nfsd
	// owns the file).
	s.SpawnAfter(10*sim.Millisecond, "adopter", func(p *sim.Proc) {
		adopted = e.AdoptOrphan(p, 1, 7)
	})
	s.Run(0)
	if adopted {
		t.Fatal("AdoptOrphan stole a file with an active nfsd")
	}
	if len(replies) != 1 {
		t.Fatalf("replies = %+v", replies)
	}
}

func TestFirstWriteLatencyPolicy(t *testing.T) {
	s := sim.New(1)
	fs := &fakeFS{s: s, syncLat: 12 * sim.Millisecond}
	cfg := DefaultConfig(false, 8*sim.Millisecond)
	cfg.FirstWriteLatency = true
	e := NewEngine(s, fs, 4, cfg, nil)
	var replies []replyRec
	spawnWrite(s, e, 0, 1, 0, &replies, 0)
	// Second write arrives while the first one's data write is in flight.
	spawnWrite(s, e, 1, 2, 8192, &replies, 5*sim.Millisecond)
	s.Run(0)
	if len(replies) != 2 {
		t.Fatalf("replies = %+v", replies)
	}
	if e.Stats().Procrastinations != 0 {
		t.Fatalf("SIVA93 policy slept: %d", e.Stats().Procrastinations)
	}
	// Data was flushed at least twice: the latency-device write plus the
	// commit's flush of the remaining range.
	if fs.syncs < 2 {
		t.Fatalf("syncs = %d", fs.syncs)
	}
}

func TestHandleCachePeakTracksDetachedReplies(t *testing.T) {
	s := sim.New(1)
	fs := &fakeFS{s: s, writeLat: sim.Millisecond}
	e := NewEngine(s, fs, 8, DefaultConfig(false, 20*sim.Millisecond), nil)
	var replies []replyRec
	for i := 0; i < 6; i++ {
		spawnWrite(s, e, i, i, uint32(i*8192), &replies, sim.Duration(i)*200*sim.Microsecond)
	}
	s.Run(0)
	if e.Stats().HandlePeak < 6 {
		t.Fatalf("HandlePeak = %d, want >= 6", e.Stats().HandlePeak)
	}
}

func TestDoubleReplyPanics(t *testing.T) {
	s := sim.New(1)
	fs := &fakeFS{s: s}
	e := NewEngine(s, fs, 1, DefaultConfig(false, sim.Millisecond), nil)
	d := &WriteDesc{Ino: 9, Send: func(*sim.Proc, bool) {}}
	d.sent = true
	panicked := false
	s.Spawn("x", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		e.sendOne(p, d, true)
	})
	s.Run(0)
	if !panicked {
		t.Fatal("double reply did not panic")
	}
}

func TestFlushAllDrainsEverything(t *testing.T) {
	s := sim.New(1)
	fs := &fakeFS{s: s}
	hunter := func(vfs.Ino) bool { return true } // strand descriptors
	e := NewEngine(s, fs, 4, DefaultConfig(false, sim.Millisecond), hunter)
	var replies []replyRec
	spawnWrite(s, e, 0, 1, 0, &replies, 0)
	s.Run(0)
	s.Spawn("drain", func(p *sim.Proc) { e.FlushAll(p) })
	s.Run(0)
	if e.PendingReplies() != 0 || len(replies) != 1 {
		t.Fatalf("pending=%d replies=%d", e.PendingReplies(), len(replies))
	}
}

func TestStatsWritesCount(t *testing.T) {
	s := sim.New(1)
	fs := &fakeFS{s: s}
	e := NewEngine(s, fs, 4, DefaultConfig(false, sim.Millisecond), nil)
	var replies []replyRec
	for i := 0; i < 3; i++ {
		spawnWrite(s, e, 0, i, uint32(i*8192), &replies, sim.Duration(i*20)*sim.Millisecond)
	}
	s.Run(0)
	if e.Stats().Writes != 3 {
		t.Fatalf("Writes = %d", e.Stats().Writes)
	}
}

var errBoom = errors.New("boom")
