// Package core implements the paper's contribution: NFS server write
// gathering (Juszczak, USENIX Winter 1994).
//
// Several WRITE requests for the same file often arrive at a server at
// about the same time (client biods emit them back-to-back). The engine
// lets the nfsd handling each write push the *data* down immediately, then
// defer the expensive synchronous *metadata* update, leaving its reply
// pending on a per-file active write queue. The last nfsd through — after
// a bounded procrastination — becomes the metadata writer: it flushes the
// gathered data range (clustered), commits the metadata once, and sends
// every pending reply in FIFO order. No reply leaves before the metadata
// covering it is on stable storage, so NFS crash semantics are preserved
// (§6.8).
//
// The engine also embodies the paper's supporting machinery: the global
// nfsd state table (§6.2), the transport handle cache that frees an nfsd
// the moment it detaches a reply (§6.1), the socket-buffer "mbuf hunter"
// probe (§6.5), the Presto/plain-disk duality (§6.3), and orphan adoption
// for duplicate requests (§6.9).
package core

import (
	"repro/internal/block"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vfs"
)

// Config selects gathering policy. The zero value is not useful; call
// DefaultConfig.
type Config struct {
	// Accelerated selects the Presto duality (§6.3): push data through
	// VOP_WRITE with IO_SYNC|IO_DATAONLY and skip VOP_SYNCDATA; otherwise
	// data is delayed in UFS (IO_DELAYDATA) and flushed clustered.
	Accelerated bool
	// Procrastinate is the transport-dependent gather wait (§6.6).
	Procrastinate sim.Duration
	// MaxProcrastinations bounds how many waits one nfsd will take before
	// becoming the metadata writer. The paper uses 1.
	MaxProcrastinations int
	// MbufHunter enables the socket-buffer scan. Without it, an nfsd that
	// never blocks (Presto) has no way to see queued writes (§6.5).
	MbufHunter bool
	// LIFOReplies sends gathered replies newest-first; the paper tried and
	// abandoned this (§6.7). Kept as an ablation.
	LIFOReplies bool
	// FirstWriteLatency replaces procrastination with the [SIVA93] policy:
	// use the synchronous write of the first request's data as the latency
	// device that gives later writes time to arrive (§6.6 discussion).
	FirstWriteLatency bool
}

// DefaultConfig returns the paper's configuration for a given medium wait.
func DefaultConfig(accelerated bool, procrastinate sim.Duration) Config {
	return Config{
		Accelerated:         accelerated,
		Procrastinate:       procrastinate,
		MaxProcrastinations: 1,
		MbufHunter:          true,
	}
}

// WriteDesc packages one pending write for handoff between nfsds (§6.2:
// "data structures that package up active write requests for handoff and a
// queue of these active requests").
type WriteDesc struct {
	Ino    vfs.Ino
	Offset uint32
	Length uint32
	// Body, when non-nil, is the refcounted payload buffer of a split
	// WRITE (a borrow of the datagram's reference, valid for the duration
	// of HandleWrite); the filesystem's zero-copy entry point adopts it.
	Body    *block.Buf
	Arrived sim.Time
	// Send delivers the reply; the engine calls it exactly once, after the
	// metadata covering the write is stable. ok=false reports a flush
	// failure so an error reply can be produced.
	Send func(p *sim.Proc, ok bool)

	sent bool
}

// NfsdStage records where an nfsd is in write processing, visible to all
// other nfsds — the paper's global array of nfsd state.
type NfsdStage int

// Stages of the write path.
const (
	StageIdle NfsdStage = iota
	StageWriting
	StageDeciding
	StageProcrastinating
	StageFlushing
)

// NfsdState is one slot of the global nfsd state table.
type NfsdState struct {
	Stage  NfsdStage
	Ino    vfs.Ino
	Offset uint32
	Length uint32
}

// Stats are cumulative engine statistics.
type Stats struct {
	// Writes is the number of write descriptors processed.
	Writes uint64
	// Gathers is the number of metadata commits (batches).
	Gathers uint64
	// GatheredWrites is the total descriptors covered by those commits;
	// GatheredWrites/Gathers is the mean gather size.
	GatheredWrites uint64
	// MaxBatch is the largest single gather.
	MaxBatch int
	// Procrastinations counts sleeps taken.
	Procrastinations uint64
	// HunterHits counts socket-buffer probes that found a matching write.
	HunterHits uint64
	// HandoffsToActive counts descriptors left to another mid-write nfsd.
	HandoffsToActive uint64
	// Adoptions counts orphaned queues rescued via AdoptOrphan (§6.9).
	Adoptions uint64
	// HandlePeak is the most transport handles ever detached at once.
	HandlePeak int
}

// Engine is the per-server write gathering state.
type Engine struct {
	sim *sim.Sim
	fs  vfs.FileSystem
	cfg Config
	// hunter probes the socket buffer for another WRITE to the file; nil
	// disables the probe regardless of cfg.MbufHunter.
	hunter func(ino vfs.Ino) bool

	// bw is fs's zero-copy write entry point, nil when unsupported.
	bw vfs.BlockWriter

	locks  *VnodeLocks
	files  map[vfs.Ino]*fileGather
	freeFG []*fileGather // retired per-file gather records
	nfsds  []NfsdState
	stats  Stats
	inUse  int // detached transport handles currently held
	handle int // handle cache high-water mark bookkeeping

	// Distribution views of the paper's central mechanism: how many
	// writes each commit covered, and how long the commit took. Pure
	// counter updates on the commit path (no events, no sleeps), so they
	// perturb nothing.
	batchHist  stats.Histogram // writes per successful commit
	commitHist stats.Histogram // commit latency, µs

	// OnCommit, when non-nil, observes every successful metadata commit:
	// the file, the batch size, and the commit window. The observability
	// plane turns these into gather spans.
	OnCommit func(ino vfs.Ino, batch int, start, end sim.Time)
}

// fileGather is the per-file gather state: how many nfsds are inside the
// write path for this vnode, and the queue of replies owed.
type fileGather struct {
	active int
	queue  []*WriteDesc
	spare  []*WriteDesc // retired batch backing, reused by the next queue
}

// takeBatch detaches the owed-reply queue for a commit, re-arming the
// queue on separate backing (writes arriving mid-commit append to it) so
// the batch slice can be recycled afterwards via doneBatch.
func (g *fileGather) takeBatch() []*WriteDesc {
	batch := g.queue
	g.queue = g.spare[:0]
	g.spare = nil
	return batch
}

// doneBatch recycles a fully-sent batch as the next queue backing.
func (g *fileGather) doneBatch(batch []*WriteDesc) {
	for i := range batch {
		batch[i] = nil
	}
	g.spare = batch[:0]
}

// NewEngine builds an engine over fs for a server with numNfsds daemons.
// hunter may be nil when the serving stack cannot expose its socket buffer.
func NewEngine(s *sim.Sim, fs vfs.FileSystem, numNfsds int, cfg Config, hunter func(vfs.Ino) bool) *Engine {
	if cfg.MaxProcrastinations < 0 {
		cfg.MaxProcrastinations = 0
	}
	bw, _ := fs.(vfs.BlockWriter)
	return &Engine{
		sim:    s,
		fs:     fs,
		bw:     bw,
		cfg:    cfg,
		hunter: hunter,
		locks:  NewVnodeLocks(s),
		files:  make(map[vfs.Ino]*fileGather),
		nfsds:  make([]NfsdState, numNfsds),
	}
}

// Stats returns a copy of the cumulative statistics.
func (e *Engine) Stats() Stats { return e.stats }

// BatchHist reports the distribution of writes covered per commit.
func (e *Engine) BatchHist() *stats.Histogram { return &e.batchHist }

// CommitHist reports the distribution of per-batch commit latency (µs).
func (e *Engine) CommitHist() *stats.Histogram { return &e.commitHist }

// Locks exposes the vnode sleep-lock table so the rest of the server
// (standard paths, SETATTR, directory ops) can serialize against gathers.
func (e *Engine) Locks() *VnodeLocks { return e.locks }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// NfsdStates exposes the global state table (diagnostics and tests).
func (e *Engine) NfsdStates() []NfsdState { return e.nfsds }

// PendingReplies reports how many descriptors currently await a metadata
// commit across all files.
func (e *Engine) PendingReplies() int {
	n := 0
	for _, g := range e.files {
		n += len(g.queue)
	}
	return n
}

func (e *Engine) file(ino vfs.Ino) *fileGather {
	g, ok := e.files[ino]
	if !ok {
		if n := len(e.freeFG); n > 0 {
			g = e.freeFG[n-1]
			e.freeFG = e.freeFG[:n-1]
		} else {
			g = &fileGather{}
		}
		e.files[ino] = g
	}
	return g
}

func (e *Engine) release(ino vfs.Ino, g *fileGather) {
	if g.active == 0 && len(g.queue) == 0 {
		delete(e.files, ino)
		g.queue = g.queue[:0]
		e.freeFG = append(e.freeFG, g)
	}
}

func (e *Engine) setStage(nfsd int, st NfsdStage, d *WriteDesc) {
	if nfsd < 0 || nfsd >= len(e.nfsds) {
		return
	}
	if d == nil {
		e.nfsds[nfsd] = NfsdState{Stage: st}
		return
	}
	e.nfsds[nfsd] = NfsdState{Stage: st, Ino: d.Ino, Offset: d.Offset, Length: d.Length}
}

// takeHandle detaches a transport handle from the handle cache (§6.1): the
// nfsd that leaves a reply pending needs a fresh handle to keep working.
func (e *Engine) takeHandle() {
	e.inUse++
	if e.inUse > e.stats.HandlePeak {
		e.stats.HandlePeak = e.inUse
	}
}

func (e *Engine) putHandle() { e.inUse-- }

// HandleWrite runs the §6.8 algorithm for one WRITE request on behalf of
// nfsd. data is the write payload. It returns with the reply either
// pending (another nfsd will send it) or already sent (this nfsd became
// the metadata writer); either way the caller's nfsd is free to take new
// work. A filesystem error is returned immediately and the descriptor's
// Send is called with ok=false.
func (e *Engine) HandleWrite(p *sim.Proc, nfsd int, d *WriteDesc, data []byte) error {
	e.stats.Writes++
	g := e.file(d.Ino)
	g.active++
	e.setStage(nfsd, StageWriting, d)

	// Hand off data to UFS via VOP_WRITE (§6.3 duality), under the vnode
	// sleep lock.
	var flags vfs.IOFlags
	if e.cfg.Accelerated {
		flags = vfs.IOSync | vfs.IODataOnly
	} else {
		flags = vfs.IODelayData
	}
	e.locks.Lock(p, d.Ino)
	var err error
	if d.Body != nil && e.bw != nil {
		err = e.bw.WriteBuf(p, d.Ino, d.Offset, d.Body, len(data), flags)
	} else {
		err = e.fs.Write(p, d.Ino, d.Offset, data, flags)
	}
	// The borrow ends here: the descriptor outlives the datagram whose
	// reference backs Body (it sits on the gather queue across sleeps), so
	// clear it rather than leave a dangling pointer past its validity.
	d.Body = nil
	e.locks.Unlock(d.Ino)
	if err != nil {
		g.active--
		e.release(d.Ino, g)
		e.setStage(nfsd, StageIdle, nil)
		d.Send(p, false)
		d.sent = true
		return err
	}

	// The reply is now owed; queue the descriptor in arrival (FIFO) order
	// and detach a transport handle so this nfsd could take other work.
	g.queue = append(g.queue, d)
	e.takeHandle()
	e.setStage(nfsd, StageDeciding, d)

	procrastinations := 0
	for {
		// Another nfsd mid-write on the same vnode — either inside the
		// gather path (active) or blocked on the vnode lock — will pass
		// through this decision later and can take the metadata duty.
		if g.active > 1 || e.locks.Blocked(d.Ino) > 0 {
			g.active--
			e.stats.HandoffsToActive++
			e.setStage(nfsd, StageIdle, nil)
			return nil
		}
		// Search the socket buffer for another write to this file.
		if e.cfg.MbufHunter && e.hunter != nil && e.hunter(d.Ino) {
			g.active--
			e.stats.HunterHits++
			e.setStage(nfsd, StageIdle, nil)
			return nil
		}
		if e.cfg.FirstWriteLatency && procrastinations == 0 && !e.cfg.Accelerated {
			// [SIVA93]: send the first write's data to disk and use that
			// I/O as the latency device, then re-check once.
			procrastinations++
			e.setStage(nfsd, StageFlushing, d)
			if err := e.fs.SyncData(p, d.Ino, d.Offset, d.Offset+d.Length); err != nil {
				return e.failBatch(p, nfsd, g, d, err)
			}
			e.setStage(nfsd, StageDeciding, d)
			continue
		}
		if procrastinations >= e.cfg.MaxProcrastinations {
			break
		}
		procrastinations++
		e.stats.Procrastinations++
		e.setStage(nfsd, StageProcrastinating, d)
		p.Sleep(e.cfg.Procrastinate)
		e.setStage(nfsd, StageDeciding, d)
	}

	// Become the metadata writer and assume responsibility for this file.
	e.setStage(nfsd, StageFlushing, d)
	for len(g.queue) > 0 {
		batch := g.takeBatch()
		err := e.commit(p, d.Ino, batch)
		g.doneBatch(batch)
		if err != nil {
			g.active--
			e.release(d.Ino, g)
			e.setStage(nfsd, StageIdle, nil)
			return err
		}
		// Writes that arrived during the commit were queued by nfsds that
		// saw us active; loop to cover them too — no descriptor may be
		// orphaned (§6.9).
	}
	g.active--
	e.release(d.Ino, g)
	e.setStage(nfsd, StageIdle, nil)
	return nil
}

// commit flushes data+metadata covering batch and sends its replies. The
// vnode lock is held across the flush so no new write mutates metadata
// between the data flush and the inode commit.
func (e *Engine) commit(p *sim.Proc, ino vfs.Ino, batch []*WriteDesc) error {
	start := e.sim.Now()
	e.locks.Lock(p, ino)
	defer e.locks.Unlock(ino)
	if !e.cfg.Accelerated {
		lo, hi := batch[0].Offset, batch[0].Offset+batch[0].Length
		for _, b := range batch[1:] {
			if b.Offset < lo {
				lo = b.Offset
			}
			if end := b.Offset + b.Length; end > hi {
				hi = end
			}
		}
		if err := e.fs.SyncData(p, ino, lo, hi); err != nil {
			e.sendAll(p, batch, false)
			return err
		}
	}
	if err := e.fs.Fsync(p, ino, vfs.FWrite|vfs.FWriteMetadata); err != nil {
		e.sendAll(p, batch, false)
		return err
	}
	e.stats.Gathers++
	e.stats.GatheredWrites += uint64(len(batch))
	if len(batch) > e.stats.MaxBatch {
		e.stats.MaxBatch = len(batch)
	}
	end := e.sim.Now()
	e.batchHist.Record(int64(len(batch)))
	e.commitHist.Record(int64(end.Sub(start)))
	if e.OnCommit != nil {
		e.OnCommit(ino, len(batch), start, end)
	}
	e.sendAll(p, batch, true)
	return nil
}

// failBatch aborts the gather on an I/O error mid-decision.
func (e *Engine) failBatch(p *sim.Proc, nfsd int, g *fileGather, d *WriteDesc, err error) error {
	batch := g.takeBatch()
	e.sendAll(p, batch, false)
	g.doneBatch(batch)
	g.active--
	e.release(d.Ino, g)
	e.setStage(nfsd, StageIdle, nil)
	return err
}

// sendAll delivers replies in FIFO (or, for the ablation, LIFO) order.
func (e *Engine) sendAll(p *sim.Proc, batch []*WriteDesc, ok bool) {
	if e.cfg.LIFOReplies {
		for i := len(batch) - 1; i >= 0; i-- {
			e.sendOne(p, batch[i], ok)
		}
		return
	}
	for _, d := range batch {
		e.sendOne(p, d, ok)
	}
}

func (e *Engine) sendOne(p *sim.Proc, d *WriteDesc, ok bool) {
	if d.sent {
		panic("core: double reply for write descriptor")
	}
	d.sent = true
	e.putHandle()
	d.Send(p, ok)
}

// AdoptOrphan rescues a gather queue whose expected metadata writer never
// materialized — e.g. the socket-buffer write that a hunter hit saw turned
// out to be a duplicate that was then discarded (§6.9). If the file has
// pending descriptors and no active nfsd, the caller becomes the metadata
// writer. It reports whether anything was flushed.
func (e *Engine) AdoptOrphan(p *sim.Proc, nfsd int, ino vfs.Ino) bool {
	g, ok := e.files[ino]
	if !ok || g.active > 0 || len(g.queue) == 0 {
		return false
	}
	g.active++
	e.setStage(nfsd, StageFlushing, &WriteDesc{Ino: ino})
	adopted := false
	for len(g.queue) > 0 {
		batch := g.takeBatch()
		err := e.commit(p, ino, batch)
		g.doneBatch(batch)
		if err != nil {
			break
		}
		adopted = true
	}
	e.stats.Adoptions++
	g.active--
	e.release(ino, g)
	e.setStage(nfsd, StageIdle, nil)
	return adopted
}

// FlushAll commits every pending gather (server shutdown / drain hook).
func (e *Engine) FlushAll(p *sim.Proc) {
	for ino, g := range e.files {
		if g.active == 0 && len(g.queue) > 0 {
			e.AdoptOrphan(p, -1, ino)
		}
	}
}
