package core

import (
	"repro/internal/sim"
	"repro/internal/vfs"
)

// VnodeLocks is the per-file sleep lock table the paper added for nfsd
// serialization and synchronization (§6.2: "OSF/1 provides a vnode spin
// lock, but not a sleep lock. I added a vnode sleep lock..."). The
// standard write path holds the lock across its entire synchronous
// VOP_WRITE; the gathering path holds it only across the data hand-off and
// the metadata commit, never while procrastinating.
type VnodeLocks struct {
	s    *sim.Sim
	m    map[vfs.Ino]*vnlock
	free []*vnlock // retired table entries, reused by the next Lock
}

type vnlock struct {
	r    *sim.Resource
	refs int
}

// NewVnodeLocks returns an empty lock table.
func NewVnodeLocks(s *sim.Sim) *VnodeLocks {
	return &VnodeLocks{s: s, m: make(map[vfs.Ino]*vnlock)}
}

// Lock blocks p until it holds ino's lock.
func (v *VnodeLocks) Lock(p *sim.Proc, ino vfs.Ino) {
	l, ok := v.m[ino]
	if !ok {
		if n := len(v.free); n > 0 {
			l = v.free[n-1]
			v.free = v.free[:n-1]
		} else {
			l = &vnlock{r: sim.NewResource(v.s, 1)}
		}
		v.m[ino] = l
	}
	l.refs++
	l.r.Acquire(p)
}

// Unlock releases ino's lock, retiring the table entry to the free list
// when no one holds or waits for it.
func (v *VnodeLocks) Unlock(ino vfs.Ino) {
	l, ok := v.m[ino]
	if !ok {
		panic("core: unlock of unknown vnode")
	}
	l.r.Release()
	l.refs--
	if l.refs == 0 {
		delete(v.m, ino)
		v.free = append(v.free, l)
	}
}

// Blocked reports how many processes are waiting for or holding ino's
// lock beyond the current holder — the "another nfsd blocked on the same
// vnode" probe of §6.8.
func (v *VnodeLocks) Blocked(ino vfs.Ino) int {
	l, ok := v.m[ino]
	if !ok {
		return 0
	}
	return l.refs - 1
}
