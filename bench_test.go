// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation section (see DESIGN.md's per-experiment index).
// Each benchmark iteration runs the full simulated experiment and reports
// the paper's headline metrics as custom benchmark outputs, so
//
//	go test -bench=Table1 -benchmem
//
// reproduces Table 1's shape. The -short forms use a smaller copy size;
// steady-state rates are unchanged.
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// copyMB picks the transfer size: the paper's 10MB normally, 2MB under
// -short.
func copyMB(b *testing.B) int {
	if testing.Short() {
		return 2
	}
	return 10
}

// benchCopyTable runs one full table per iteration and reports the
// paper's key cells as metrics.
func benchCopyTable(b *testing.B, spec experiments.CopySpec) {
	spec.FileMB = copyMB(b)
	b.ReportAllocs()
	var tbl *experiments.CopyTable
	for i := 0; i < b.N; i++ {
		tbl = experiments.RunCopyTable(spec)
	}
	last := len(tbl.Without) - 1
	b.ReportMetric(tbl.Without[0].ClientKBps, "std0biod-KB/s")
	b.ReportMetric(tbl.Without[last].ClientKBps, "stdMaxbiod-KB/s")
	b.ReportMetric(tbl.With[0].ClientKBps, "wg0biod-KB/s")
	b.ReportMetric(tbl.With[last].ClientKBps, "wgMaxbiod-KB/s")
	b.ReportMetric(tbl.With[last].CPUPercent, "wgMaxbiod-cpu%")
	b.ReportMetric(tbl.Without[last].DiskTransSec, "std-disk-t/s")
	b.ReportMetric(tbl.With[last].DiskTransSec, "wg-disk-t/s")
	b.Logf("\n%s", tbl.Render())
}

func BenchmarkTable1EthernetCopy(b *testing.B)     { benchCopyTable(b, experiments.Table1Spec()) }
func BenchmarkTable2EthernetPresto(b *testing.B)   { benchCopyTable(b, experiments.Table2Spec()) }
func BenchmarkTable3FDDICopy(b *testing.B)         { benchCopyTable(b, experiments.Table3Spec()) }
func BenchmarkTable4FDDIPresto(b *testing.B)       { benchCopyTable(b, experiments.Table4Spec()) }
func BenchmarkTable5FDDIStripe(b *testing.B)       { benchCopyTable(b, experiments.Table5Spec()) }
func BenchmarkTable6FDDIPrestoStripe(b *testing.B) { benchCopyTable(b, experiments.Table6Spec()) }

// BenchmarkFigure1Timeline regenerates the traffic timelines of Figure 1
// and reports the disk-operation reduction the figure illustrates.
func BenchmarkFigure1Timeline(b *testing.B) {
	var stdOps, wgOps int
	for i := 0; i < b.N; i++ {
		_, stdLog := experiments.RunFigure1(experiments.DefaultFigure1(false))
		_, wgLog := experiments.RunFigure1(experiments.DefaultFigure1(true))
		stdOps, wgOps = 0, 0
		for k, v := range stdLog.Summary(0, 1<<62) {
			if len(k) > 5 && k[:5] == "disk:" {
				stdOps += v
			}
		}
		for k, v := range wgLog.Summary(0, 1<<62) {
			if len(k) > 5 && k[:5] == "disk:" {
				wgOps += v
			}
		}
	}
	b.ReportMetric(float64(stdOps), "std-disk-ops")
	b.ReportMetric(float64(wgOps), "wg-disk-ops")
	b.ReportMetric(float64(stdOps)/float64(wgOps), "reduction-x")
}

// benchFigure sweeps one LADDIS figure. Under -short the sweep is
// coarsened to every other load point with a shorter measured phase.
func benchFigure(b *testing.B, spec experiments.FigureSpec) {
	if testing.Short() {
		var half []float64
		for i, l := range spec.Loads {
			if i%2 == 1 {
				half = append(half, l)
			}
		}
		spec.Loads = half
		spec.Measure = 4 * sim.Second
	}
	var wo, wi *experiments.LADDISCurve
	for i := 0; i < b.N; i++ {
		wo, wi = experiments.RunFigure(spec)
	}
	capW, latW := wo.Capacity(50)
	capG, latG := wi.Capacity(50)
	b.ReportMetric(capW, "std-cap-ops/s")
	b.ReportMetric(capG, "wg-cap-ops/s")
	b.ReportMetric(latW, "std-lat-ms")
	b.ReportMetric(latG, "wg-lat-ms")
	if capW > 0 {
		b.ReportMetric(100*(capG-capW)/capW, "cap-delta-%")
	}
	b.Logf("\n%s", experiments.RenderFigure(spec, wo, wi))
}

func BenchmarkFigure2LADDIS(b *testing.B)       { benchFigure(b, experiments.Figure2Spec()) }
func BenchmarkFigure3LADDISPresto(b *testing.B) { benchFigure(b, experiments.Figure3Spec()) }

// Ablation benches for the design choices DESIGN.md calls out.

func benchAblation(b *testing.B, title string, run func() []experiments.AblationResult) {
	var rows []experiments.AblationResult
	for i := 0; i < b.N; i++ {
		rows = run()
	}
	for i, r := range rows {
		b.ReportMetric(r.ClientKBps, fmt.Sprintf("variant%d-KB/s", i))
	}
	b.Logf("\n%s", experiments.RenderAblation(title, rows))
}

func BenchmarkAblationReplyOrder(b *testing.B) {
	benchAblation(b, "Reply order (§6.7)", experiments.AblationReplyOrder)
}

func BenchmarkAblationProcrastination(b *testing.B) {
	benchAblation(b, "Procrastination interval (§6.6)", experiments.AblationProcrastination)
}

func BenchmarkAblationFirstWriteLatency(b *testing.B) {
	benchAblation(b, "Latency device policy (§6.6 / SIVA93)", experiments.AblationFirstWriteLatency)
}

func BenchmarkAblationHunterPlain(b *testing.B) {
	benchAblation(b, "mbuf hunter, plain disk (§6.5)", func() []experiments.AblationResult {
		return experiments.AblationHunter(false)
	})
}

func BenchmarkAblationHunterPresto(b *testing.B) {
	benchAblation(b, "mbuf hunter, Presto (§6.5)", func() []experiments.AblationResult {
		return experiments.AblationHunter(true)
	})
}

func BenchmarkAblationOneNfsd(b *testing.B) {
	benchAblation(b, "nfsd pool size (§6.1)", experiments.AblationOneNfsd)
}

// BenchmarkScaleSweep runs the clients × servers grid (1/2/4 clients
// against 1/2 sharded servers, both server builds) and reports each
// cell's achieved throughput and mean response time. Under -short the
// measured phase is halved; the cells stay deterministic at their seeds.
func BenchmarkScaleSweep(b *testing.B) {
	spec := experiments.DefaultScaleSpec()
	if testing.Short() {
		spec.Measure = 2 * sim.Second
	}
	var cells []experiments.ScaleCell
	for i := 0; i < b.N; i++ {
		cells = experiments.RunScaleSweep(spec)
	}
	for _, c := range cells {
		b.ReportMetric(c.AchievedOpsPerSec, c.CellTag()+"-ops/s")
		b.ReportMetric(c.AvgLatencyMs, c.CellTag()+"-ms")
	}
	b.Logf("\n%s", experiments.RenderScaleSweep(spec, cells))
}

// BenchmarkScenarioFaultSweeps runs the two registry scenarios only the
// declarative API can express — the partial-cluster crash under LADDIS
// load and the multi-node flapping storm — and reports their headline
// columns (the storm's lost-byte count must stay 0).
func BenchmarkScenarioFaultSweeps(b *testing.B) {
	partial, ok := scenario.Lookup("partialcrash")
	if !ok {
		b.Fatal("partialcrash not registered")
	}
	storm, ok := scenario.Lookup("flapstorm")
	if !ok {
		b.Fatal("flapstorm not registered")
	}
	var pres, sres *scenario.Result
	for i := 0; i < b.N; i++ {
		pres = scenario.MustRun(partial)
		sres = scenario.MustRun(storm)
	}
	for _, c := range pres.Cells {
		b.ReportMetric(c.AchievedOpsPerSec, c.Label+"-ops/s")
		b.ReportMetric(c.P95LatencyMs, c.Label+"-p95ms")
		b.ReportMetric(float64(c.RebootsSeen), c.Label+"-reboots-seen")
	}
	for _, c := range sres.Cells {
		b.ReportMetric(float64(c.Crashes), "storm-"+c.Label+"-crashes")
		b.ReportMetric(float64(c.LostBytes), "storm-"+c.Label+"-lost-B")
	}
	b.Logf("\n%s%s", pres.Render(), sres.Render())
}

// BenchmarkCrashRecovery runs the crash/recovery durability experiment
// with gathering on, without and with Presto, and reports the checker's
// verdict: acked bytes, lost bytes (the contract demands 0), recovery
// time and the client-observed outage cost.
func BenchmarkCrashRecovery(b *testing.B) {
	var plain, presto experiments.CrashResult
	for i := 0; i < b.N; i++ {
		plain = experiments.RunCrashRecovery(experiments.DefaultCrashSpec(false))
		presto = experiments.RunCrashRecovery(experiments.DefaultCrashSpec(true))
	}
	b.ReportMetric(float64(plain.AckedBytes)/1024, "plain-acked-KB")
	b.ReportMetric(float64(plain.LostBytes), "plain-lost-B")
	b.ReportMetric(plain.MeanRecoveryMs, "plain-recovery-ms")
	b.ReportMetric(float64(plain.Retransmissions), "plain-retrans")
	b.ReportMetric(float64(presto.AckedBytes)/1024, "presto-acked-KB")
	b.ReportMetric(float64(presto.LostBytes), "presto-lost-B")
	b.ReportMetric(presto.MeanRecoveryMs, "presto-recovery-ms")
	b.ReportMetric(float64(presto.RecoveredNVRAMBlocks), "presto-replayed-blocks")
	b.Logf("\n%s%s",
		experiments.RenderCrashRecovery(experiments.DefaultCrashSpec(false), plain),
		experiments.RenderCrashRecovery(experiments.DefaultCrashSpec(true), presto))
}

// Parallel-harness benchmarks: the same work at worker-pool sizes 1 and
// GOMAXPROCS. The metric columns must be identical between the Seq and
// Par variants of each pair (the engine's byte-identity contract); only
// ns/op may move, and only with real cores to spread across.

// figure2EngineSpec is the figure2 LADDIS sweep as a declarative spec
// (the multi-cell sweep BENCH_PR8 times sequential vs parallel). Under
// -short the sweep coarsens like benchFigure does.
func figure2EngineSpec(b *testing.B) scenario.Spec {
	spec, ok := scenario.Lookup("figure2")
	if !ok {
		b.Fatal("figure2 not registered")
	}
	if testing.Short() {
		var half []scenario.Cell
		for i, c := range spec.Cells {
			if i%2 == 1 {
				half = append(half, c)
			}
		}
		spec.Cells = half
		l := *spec.Workload.LADDIS
		l.Measure = 4 * sim.Second
		spec.Workload.LADDIS = &l
	}
	return spec
}

func benchFigure2Engine(b *testing.B, workers int) {
	spec := figure2EngineSpec(b)
	b.ReportAllocs()
	var res *scenario.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = scenario.RunWorkers(spec, workers)
		if err != nil {
			b.Fatal(err)
		}
	}
	var ops float64
	for _, c := range res.Cells {
		ops += c.AchievedOpsPerSec
	}
	b.ReportMetric(float64(len(res.Cells)), "cells")
	b.ReportMetric(ops, "agg-ops/s")
}

func BenchmarkFigure2EngineSequential(b *testing.B) { benchFigure2Engine(b, 1) }
func BenchmarkFigure2EngineParallel(b *testing.B) {
	benchFigure2Engine(b, runtime.GOMAXPROCS(0))
}

// fuzzBatchRuns sizes the benchmarked campaign: every generated spec is
// a small faulted stream sim, and the fixed (seed, runs) prefix is known
// clean, so the whole batch is timed (no early exit).
func fuzzBatchRuns(b *testing.B) int {
	if testing.Short() {
		return 25
	}
	return 100
}

func benchFuzzBatch(b *testing.B, workers int) {
	runs := fuzzBatchRuns(b)
	b.ReportAllocs()
	var failed float64
	for i := 0; i < b.N; i++ {
		if f := scenario.Fuzz(scenario.FuzzConfig{Runs: runs, Seed: 1, Workers: workers}); f != nil {
			failed = 1
			b.Errorf("fuzz batch found a failure:\n%s", f)
		}
	}
	b.ReportMetric(float64(runs), "runs")
	b.ReportMetric(failed, "failed")
}

func BenchmarkFuzzBatchSequential(b *testing.B) { benchFuzzBatch(b, 1) }
func BenchmarkFuzzBatchParallel(b *testing.B) {
	benchFuzzBatch(b, runtime.GOMAXPROCS(0))
}
