// Filecopy reruns the paper's case study (§5 and Table 1): a 10MB
// sequential file copy over Ethernet with a sweep of client biod counts,
// against both the standard and the write-gathering server. It prints the
// table in the paper's format. Pass -fddi for the Table 3 configuration.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	fddi := flag.Bool("fddi", false, "use the FDDI configuration (Table 3)")
	presto := flag.Bool("presto", false, "add Prestoserve NVRAM (Tables 2/4)")
	mb := flag.Int("mb", 10, "file size in MB")
	flag.Parse()

	var spec experiments.CopySpec
	switch {
	case *fddi && *presto:
		spec = experiments.Table4Spec()
	case *fddi:
		spec = experiments.Table3Spec()
	case *presto:
		spec = experiments.Table2Spec()
	default:
		spec = experiments.Table1Spec()
	}
	spec.FileMB = *mb
	tbl := experiments.RunCopyTable(spec)
	fmt.Println(tbl.Render())

	// The paper's headline observations, computed from the rows.
	wo, wi := tbl.Without, tbl.With
	last := len(wo) - 1
	fmt.Printf("0-biod cost of gathering: %.0f%%\n",
		100*(wo[0].ClientKBps-wi[0].ClientKBps)/wo[0].ClientKBps)
	fmt.Printf("%d-biod gain from gathering: %.0f%%\n", wo[last].Biods,
		100*(wi[last].ClientKBps-wo[last].ClientKBps)/wo[last].ClientKBps)
	fmt.Printf("disk transaction reduction at %d biods: %.1fx\n", wo[last].Biods,
		wo[last].DiskTransSec/wi[last].DiskTransSec)
	fmt.Printf("mean gather batch at %d biods: %.1f writes per metadata commit\n",
		wi[last].Biods, float64(wi[last].Gather.GatheredWrites)/float64(wi[last].Gather.Gathers))
}
