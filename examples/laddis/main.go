// Laddis sweeps a SPEC SFS 1.0-style mixed workload (15% writes) against
// the standard and gathering servers and prints the throughput/latency
// curve of the paper's Figure 2 (or Figure 3 with -presto).
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	presto := flag.Bool("presto", false, "Prestoserve configuration (Figure 3)")
	quick := flag.Bool("quick", true, "coarse sweep (faster)")
	flag.Parse()

	spec := experiments.Figure2Spec()
	if *presto {
		spec = experiments.Figure3Spec()
	}
	if *quick {
		var half []float64
		for i, l := range spec.Loads {
			if i%2 == 0 {
				half = append(half, l)
			}
		}
		spec.Loads = half
		spec.Measure = 5 * sim.Second
	}
	wo, wi := experiments.RunFigure(spec)
	fmt.Println(experiments.RenderFigure(spec, wo, wi))
}
