// Realnet exercises the repository's genuine NFSv2 wire protocol over a
// real UDP loopback socket: it starts the realnfs server in-process,
// creates a directory tree, writes a file in 8K chunks, reads it back and
// verifies the contents — all via encoded ONC RPC datagrams.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/nfsproto"
	"repro/internal/realnfs"
)

func main() {
	srv, err := realnfs.New("127.0.0.1:0")
	if err != nil {
		log.Fatalf("realnet: %v", err)
	}
	go srv.Serve()
	defer srv.Close()
	fmt.Printf("server on %s\n", srv.Addr())

	cli, err := realnfs.Dial(srv.Addr())
	if err != nil {
		log.Fatalf("realnet: %v", err)
	}
	defer cli.Close()

	root := srv.RootFH()

	// mkdir /data
	res, err := cli.Call(nfsproto.ProcMkdir, (&nfsproto.CreateArgs{
		Where: nfsproto.DirOpArgs{Dir: root, Name: "data"},
		Attr:  nfsproto.DefaultSAttr(0755),
	}).Encode())
	if err != nil {
		log.Fatalf("mkdir: %v", err)
	}
	dir, err := nfsproto.DecodeDirOpRes(res)
	if err != nil || dir.Status != nfsproto.OK {
		log.Fatalf("mkdir: %v %v", err, dir)
	}
	fmt.Println("MKDIR /data ->", dir.File)

	// create /data/blob
	res, err = cli.Call(nfsproto.ProcCreate, (&nfsproto.CreateArgs{
		Where: nfsproto.DirOpArgs{Dir: dir.File, Name: "blob"},
		Attr:  nfsproto.DefaultSAttr(0644),
	}).Encode())
	if err != nil {
		log.Fatalf("create: %v", err)
	}
	file, err := nfsproto.DecodeDirOpRes(res)
	if err != nil || file.Status != nfsproto.OK {
		log.Fatalf("create: %v %v", err, file)
	}
	fmt.Println("CREATE /data/blob ->", file.File)

	// write 64K in 8K chunks
	payload := make([]byte, 8192)
	for blk := 0; blk < 8; blk++ {
		for i := range payload {
			payload[i] = byte(blk*31 + i)
		}
		res, err = cli.Call(nfsproto.ProcWrite, (&nfsproto.WriteArgs{
			File: file.File, Offset: uint32(blk * 8192), Data: payload,
		}).Encode())
		if err != nil {
			log.Fatalf("write: %v", err)
		}
		as, err := nfsproto.DecodeAttrStat(res)
		if err != nil || as.Status != nfsproto.OK {
			log.Fatalf("write: %v %v", err, as)
		}
	}
	fmt.Println("WRITE 64K in 8 requests: ok")

	// read back and verify
	for blk := 0; blk < 8; blk++ {
		res, err = cli.Call(nfsproto.ProcRead, (&nfsproto.ReadArgs{
			File: file.File, Offset: uint32(blk * 8192), Count: 8192,
		}).Encode())
		if err != nil {
			log.Fatalf("read: %v", err)
		}
		rr, err := nfsproto.DecodeReadRes(res)
		if err != nil || rr.Status != nfsproto.OK {
			log.Fatalf("read: %v %v", err, rr)
		}
		want := make([]byte, 8192)
		for i := range want {
			want[i] = byte(blk*31 + i)
		}
		if !bytes.Equal(rr.Data, want) {
			log.Fatalf("read: block %d content mismatch", blk)
		}
	}
	fmt.Println("READ 64K back: contents verified")

	// list /data
	res, err = cli.Call(nfsproto.ProcReaddir, (&nfsproto.ReaddirArgs{
		Dir: dir.File, Count: 1024,
	}).Encode())
	if err != nil {
		log.Fatalf("readdir: %v", err)
	}
	ls, err := nfsproto.DecodeReaddirRes(res)
	if err != nil || ls.Status != nfsproto.OK {
		log.Fatalf("readdir: %v %v", err, ls)
	}
	for _, e := range ls.Entries {
		fmt.Printf("READDIR entry: ino=%d name=%q\n", e.FileID, e.Name)
	}
	fmt.Printf("served %d RPCs over real UDP\n", srv.Requests)
}
