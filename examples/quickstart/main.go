// Quickstart: build a complete simulated NFS testbed (client, FDDI
// network, write-gathering server, UFS on an RZ26 disk), write a 1MB file
// through it, and print what the gathering engine did.
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/sim"
)

func main() {
	rig := experiments.NewRig(experiments.RigConfig{
		Net:       hw.FDDI(),
		Gathering: true,
		NumNfsds:  8,
		Biods:     7,
		Seed:      1,
	})

	var elapsed sim.Duration
	rig.Sim.Spawn("app", func(p *sim.Proc) {
		cres, err := rig.Clients[0].Create(p, rig.Server.RootFH(), "hello.dat", 0644)
		if err != nil {
			panic(err)
		}
		rig.MarkInterval()
		elapsed, err = rig.Clients[0].WriteFile(p, cres.File, 1<<20)
		if err != nil {
			panic(err)
		}
	})
	rig.Sim.Run(0)

	cpu, diskKB, diskTps := rig.IntervalStats()
	st := rig.Server.Engine().Stats()
	fmt.Printf("wrote 1MB over simulated FDDI in %v (%.0f KB/s)\n",
		elapsed, 1024/elapsed.Seconds())
	fmt.Printf("server cpu %.1f%%, disk %.0f KB/s at %.0f trans/s\n", cpu, diskKB, diskTps)
	fmt.Printf("gathering: %d writes -> %d metadata commits (mean batch %.1f, max %d)\n",
		st.Writes, st.Gathers, float64(st.GatheredWrites)/float64(st.Gathers), st.MaxBatch)
	fmt.Printf("procrastinations=%d hunter hits=%d handle peak=%d\n",
		st.Procrastinations, st.HunterHits, st.HandlePeak)
}
