// Quickstart: describe a complete simulated NFS experiment as one
// declarative scenario spec — an FDDI network, a 7-biod client, a
// write-gathering server on an RZ26 disk, a 1MB sequential copy — run
// it, and print what the gathering engine did.
//
// Everything here is data: the same spec JSON-encodes (see `nfsbench
// -dump`), re-runs deterministically at its seed, and sweeps by adding
// cells. See internal/scenario and DESIGN.md "Scenario API".
package main

import (
	"fmt"

	"repro/internal/scenario"
)

func main() {
	spec := scenario.Spec{
		Name: "quickstart",
		Seed: 1,
		Topology: scenario.Topology{
			Net:     "fddi",
			Clients: []scenario.ClientGroup{{Count: 1, Biods: 7}},
			Servers: scenario.Servers{Count: 1, Gathering: true},
		},
		Workload: scenario.Workload{Kind: scenario.KindCopy, Copy: &scenario.CopyWorkload{FileMB: 1}},
	}
	res, err := scenario.Run(spec)
	if err != nil {
		panic(err)
	}

	c := res.Cells[0]
	st := c.Gather
	fmt.Printf("wrote 1MB over simulated FDDI in %v (%.0f KB/s)\n",
		c.Elapsed, c.ClientKBps)
	fmt.Printf("server cpu %.1f%%, disk %.0f KB/s at %.0f trans/s\n",
		c.CPUPercent, c.DiskKBps, c.DiskTps)
	fmt.Printf("gathering: %d writes -> %d metadata commits (mean batch %.1f, max %d)\n",
		st.Writes, st.Gathers, float64(st.GatheredWrites)/float64(st.Gathers), st.MaxBatch)
	fmt.Printf("procrastinations=%d hunter hits=%d handle peak=%d\n",
		st.Procrastinations, st.HunterHits, st.HandlePeak)
}
