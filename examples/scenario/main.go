// Scenario: compose an experiment the legacy entry points could not
// express — entirely as data. A two-shard cluster where one shard runs
// Presto NVRAM and the other does not, under client write streams with
// every acked write durability-checked, driven through the typed fault
// API: the Presto shard first survives a classic crash/reboot cycle (the
// legacy `crashes` form still decodes as-is, and the reboot replays its
// NVRAM), one client's network attachment flaps mid-stream, and finally
// the Presto shard dies for good and the plain shard adopts its disks
// under a stable FSID — handles stay valid, clients reroute, and the
// checker reads every acked byte back through the migrated export.
//
// Run with -dump to print the spec as JSON instead (pipe it to a file,
// check it with `nfsbench -validate <file>`, edit it, and replay it with
// `nfsbench -scenario <file>`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	dump := flag.Bool("dump", false, "print the spec as JSON and exit")
	flag.Parse()

	presto := true
	std, wg := false, true
	client1 := 1
	spec := scenario.Spec{
		Name:        "mixed-shard-faults",
		Description: "asymmetric shards (one Presto, one plain): the Presto shard crashes and reboots, a client link flaps, then the Presto shard dies for good and is adopted",
		Seed:        2026,
		Topology: scenario.Topology{
			Net:     "fddi",
			Clients: []scenario.ClientGroup{{Count: 2, Biods: 4, MaxRetries: 64}},
			Servers: scenario.Servers{
				Count: 2,
				Nodes: []scenario.NodeOverride{
					{}, // shard 1: plain disk
					{Presto: &presto},
				},
			},
		},
		Workload: scenario.Workload{Kind: scenario.KindStream,
			Stream: &scenario.StreamWorkload{FileMB: 1, Shard: true}},
		Faults: scenario.Faults{
			CheckDurability: true,
			// The legacy crash-train form and the typed events compose in
			// one schedule: trains are adapted onto server-crash events
			// ahead of the list below.
			Crashes: []scenario.CrashTrain{
				{Node: 1, At: 300 * sim.Millisecond, Outage: 150 * sim.Millisecond, Count: 1},
			},
			Events: []scenario.FaultEvent{
				{
					Kind: scenario.FaultLinkOutage,
					LinkOutage: &scenario.LinkOutageFault{
						Client: &client1, At: 600 * sim.Millisecond,
						Outage: 100 * sim.Millisecond, Count: 1,
					},
				},
				{
					Kind: scenario.FaultShardFailover,
					ShardFailover: &scenario.ShardFailoverFault{
						Node: 1, To: 0, At: 1100 * sim.Millisecond,
						Takeover: 250 * sim.Millisecond,
					},
				},
			},
		},
		Cells: []scenario.Cell{
			{Label: "std", Gathering: &std},
			{Label: "wg", Gathering: &wg},
		},
		Metrics: []string{"elapsed_sec", "client_kb_per_sec", "retransmissions", "reboots_seen", "crashes", "lost_bytes"},
	}

	if *dump {
		blob, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			panic(err)
		}
		fmt.Println(string(blob))
		return
	}
	res, err := scenario.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(res.Render())
}
