// Scenario: compose an experiment the legacy entry points could not
// express — a two-shard cluster where one shard runs Presto NVRAM and
// the other does not, crashed in turn under client write streams, with
// every acked write durability-checked — entirely as data, then sweep
// the server build across cells.
//
// Run with -dump to print the spec as JSON instead (pipe it to a file,
// edit it, and replay it with `nfsbench -scenario <file>`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	dump := flag.Bool("dump", false, "print the spec as JSON and exit")
	flag.Parse()

	presto := true
	std, wg := false, true
	spec := scenario.Spec{
		Name:        "mixed-shard-crash",
		Description: "asymmetric shards (one Presto, one plain) crashed in turn under write streams",
		Seed:        2026,
		Topology: scenario.Topology{
			Net:     "fddi",
			Clients: []scenario.ClientGroup{{Count: 2, Biods: 4, MaxRetries: 64}},
			Servers: scenario.Servers{
				Count: 2,
				Nodes: []scenario.NodeOverride{
					{}, // shard 1: plain disk
					{Presto: &presto},
				},
			},
		},
		Workload: scenario.Workload{Kind: scenario.KindStream,
			Stream: &scenario.StreamWorkload{FileMB: 1, Shard: true}},
		Faults: scenario.Faults{
			CheckDurability: true,
			Crashes: []scenario.CrashTrain{
				{Node: 0, At: 300 * sim.Millisecond, Outage: 200 * sim.Millisecond, Count: 1},
				{Node: 1, At: 900 * sim.Millisecond, Outage: 200 * sim.Millisecond, Count: 1},
			},
		},
		Cells: []scenario.Cell{
			{Label: "std", Gathering: &std},
			{Label: "wg", Gathering: &wg},
		},
		Metrics: []string{"elapsed_sec", "client_kb_per_sec", "retransmissions", "reboots_seen", "crashes", "lost_bytes"},
	}

	if *dump {
		blob, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			panic(err)
		}
		fmt.Println(string(blob))
		return
	}
	res, err := scenario.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(res.Render())
}
