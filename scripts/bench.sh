#!/usr/bin/env bash
# bench.sh — run the root reproduction benchmarks and record the results
# as JSON, seeding the repo's perf trajectory (BENCH_*.json).
#
# Usage:
#   scripts/bench.sh [OUT.json]
#
# Environment:
#   BENCH    benchmark regex       (default: Table1EthernetCopy|Figure2LADDIS)
#   COUNT    repetitions           (default: 3; medians are recorded)
#   BASELINE path to a previously recorded JSON to embed under "baseline",
#            adding wall-time and allocation speedup ratios
#
# Each benchmark iteration runs a full simulated experiment with a fixed
# seed, so the custom metric columns (the paper's table cells) must be
# byte-identical between runs and across optimization PRs; ns/op and
# allocs/op are what a perf PR is allowed to move.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR4.json}"
bench="${BENCH:-BenchmarkTable1EthernetCopy\$|BenchmarkFigure2LADDIS\$|BenchmarkScaleSweep\$|BenchmarkCrashRecovery\$}"
count="${COUNT:-3}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$bench" -benchmem -short -benchtime=1x \
	-count="$count" . | tee "$raw"

python3 - "$raw" "$out" <<'EOF'
import json, os, re, statistics, subprocess, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
runs = {}
for line in open(raw_path):
    m = re.match(r'^(Benchmark\S+)(?:-\d+)?\s+\d+\s+(\d+) ns/op(.*)', line)
    if not m:
        continue
    name, ns, rest = m.group(1), int(m.group(2)), m.group(3)
    entry = runs.setdefault(name, {"ns": [], "allocs": [], "bytes": [], "metrics": {}})
    entry["ns"].append(ns)
    for val, unit in re.findall(r'(-?[\d.]+) (\S+)', rest):
        if unit == "allocs/op":
            entry["allocs"].append(int(val))
        elif unit == "B/op":
            entry["bytes"].append(int(val))
        else:
            entry["metrics"][unit] = float(val)

result = {
    "go": subprocess.run(["go", "version"], capture_output=True, text=True).stdout.strip(),
    "flags": "-short -benchtime=1x",
    "cpus": os.cpu_count(),
    "benchmarks": {},
}
for name, e in sorted(runs.items()):
    result["benchmarks"][name] = {
        "ns_per_op_median": int(statistics.median(e["ns"])),
        "ns_per_op_runs": e["ns"],
        "allocs_per_op": int(statistics.median(e["allocs"])) if e["allocs"] else None,
        "bytes_per_op": int(statistics.median(e["bytes"])) if e["bytes"] else None,
        "metrics": e["metrics"],
    }

base_path = os.environ.get("BASELINE")
if base_path:
    base = json.load(open(base_path))
    result["baseline"] = base
    speedups = {}
    for name, cur in result["benchmarks"].items():
        b = base.get("benchmarks", {}).get(name)
        if not b:
            continue
        s = {"wall_x": round(b["ns_per_op_median"] / cur["ns_per_op_median"], 2)}
        if b.get("allocs_per_op") and cur.get("allocs_per_op"):
            s["allocs_x"] = round(b["allocs_per_op"] / cur["allocs_per_op"], 2)
        s["metrics_identical"] = b.get("metrics") == cur.get("metrics")
        speedups[name] = s
    result["speedup_vs_baseline"] = speedups

json.dump(result, open(out_path, "w"), indent=2)
print(f"wrote {out_path}")
EOF
